// Ablation of the HSA design choices (not a paper table, but the design
// knobs section V-C calls out): the switching threshold lambda and the
// 20-frame guard time. Sweeps lambda and guard on the normal level and
// reports success rate and the fraction of frames driven by IL.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "mathkit/table.hpp"
#include "sim/evaluator.hpp"

int main() {
  using namespace icoil;
  const auto policy = bench::shared_policy();

  sim::EvalConfig eval_config;
  eval_config.episodes = bench::episodes_override(15);
  sim::Evaluator evaluator(eval_config);

  world::ScenarioOptions options;
  options.difficulty = world::Difficulty::kNormal;

  math::TextTable table(
      {"lambda", "guard", "success", "IL frames", "time mean [s]"});

  const auto& registry = core::ControllerRegistry::instance();
  const double lambdas[] = {0.1, 0.3, 1.0, 3.0, 10.0};
  for (double lambda : lambdas) {
    for (int guard : {0, 20}) {
      core::IcoilConfig config;
      config.hsa.lambda = lambda;
      config.hsa.guard_frames = guard;
      // The registry factory copies the swept config, so the per-iteration
      // local is safe to hand over.
      core::ControllerBuildArgs args;
      args.policy = policy.get();
      args.icoil = &config;
      const sim::Aggregate agg =
          evaluator.evaluate(registry.factory("icoil", args), options, "iCOIL");
      table.add_row({math::format_double(lambda, 1), std::to_string(guard),
                     math::format_double(100.0 * agg.success_ratio(), 0) + "%",
                     math::format_double(100.0 * agg.il_fraction.mean(), 0) + "%",
                     math::format_double(agg.park_time.mean(), 2)});
      std::fprintf(stderr, "[ablation] lambda=%.1f guard=%d done\n", lambda,
                   guard);
    }
  }

  std::printf("\nHSA ablation — lambda / guard-time sweep on the normal level "
              "(%d episodes/cell)\n\n",
              eval_config.episodes);
  table.print(std::cout);
  table.save_csv("ablation_hsa.csv");
  return 0;
}
