// Thin driver over the serve:: front-end subsystem. All serving-loop logic
// — session lifecycle, tick scheduling, admission control, load shedding,
// deadline autotuning, latency accounting — lives in serve::Frontend (and
// core::LatencyHistogram); this file only parses flags, runs one Frontend
// per load level, prints tables and assembles the RunReport.
//
// --sessions takes either one count (single run) or a comma list
// ("--sessions 1,10,100") which sweeps offered load level by level and
// reports frames/sec and tail latency vs. load, flagging the saturation
// knee (the last level whose throughput still grew meaningfully).
//
// Ctrl-C is clean: SIGINT trips a shared core::CancelToken that every
// session polls, episodes end as budget_exceeded, and the partial report —
// containing the load levels completed so far — is written (meta.aborted)
// before exit 130.
//
// Usage:
//   bench_serve [options]
//     --sessions N[,N...]    offered load level(s) (default 8)
//     --method KEY           controller registry key (default co)
//     --frame-deadline-ms X  static per-frame budget (default: none)
//     --capacity N           max active sessions (default 0 = unlimited)
//     --queue-limit N        arrivals that may wait for a slot before
//                            shedding starts (default -1 = unbounded)
//     --warmup-frames N      leading frames per session excluded from the
//                            latency percentiles (default 1)
//     --autotune-deadline    tune each session's frame deadline from its
//                            rolling p99 frame latency
//     --deadline-min-ms X    tuner clamp floor (default 5)
//     --deadline-max-ms X    tuner clamp ceiling (default 200)
//     --deadline-headroom X  tuner target = X * rolling p99 (default 1.5)
//     --time-limit S         per-episode simulated time limit (default 60)
//     --difficulty LEVEL     easy|normal|hard (default normal)
//     --threads N            pool workers (0 = hardware, capped at 16)
//     --seed S               base seed; session i uses seed+i (default 1000)
//     --report PATH          write the RunReport JSON artifact
//     --quick                smoke mode: easy 6 s episodes (4 sessions
//                            unless --sessions is given)
//     --batch-inference      batch IL forwards across sessions per tick
//                            (methods with a policy only; default method
//                            becomes il when none is given)
//     --max-batch N          cap one batched forward (default 32)
//
// Exit codes: 0 ok, 2 usage error, 3 I/O error, 130 aborted by SIGINT.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "mathkit/gemm.hpp"
#include "mathkit/table.hpp"
#include "serve/frontend.hpp"

namespace {

using namespace icoil;

struct ServeOptions {
  std::vector<int> session_levels = {8};
  serve::FrontendConfig frontend;  ///< shared knobs; sessions set per level
  std::string report_path;
  bool quick = false;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sessions N[,N...]] [--method KEY] "
               "[--frame-deadline-ms X] [--capacity N] [--queue-limit N] "
               "[--warmup-frames N] [--autotune-deadline] "
               "[--deadline-min-ms X] [--deadline-max-ms X] "
               "[--deadline-headroom X] [--time-limit S] "
               "[--difficulty easy|normal|hard] [--threads N] [--seed S] "
               "[--report PATH] [--quick] [--batch-inference] [--max-batch N]\n",
               argv0);
  return 2;
}

/// "1,10,100" -> {1, 10, 100}, sorted ascending and deduplicated (the knee
/// heuristic reads the rows as an offered-load-ascending curve).
bool parse_session_levels(const char* text, std::vector<int>* out) {
  out->clear();
  std::string token;
  for (const char* p = text;; ++p) {
    if (*p != ',' && *p != '\0') {
      token.push_back(*p);
      continue;
    }
    int value = 0;
    if (token.empty() || !bench::parse_int_arg(token.c_str(), &value) ||
        value < 1)
      return false;
    out->push_back(value);
    token.clear();
    if (*p == '\0') break;
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
  return !out->empty();
}

void print_single_run(const serve::FrontendResult& r) {
  const sim::ServeStats& stats = r.stats;
  math::TextTable table({"metric", "value"});
  table.add_row({"sessions offered", std::to_string(stats.offered)});
  table.add_row({"admitted", std::to_string(stats.admitted)});
  table.add_row({"queued", std::to_string(stats.queued)});
  table.add_row({"shed", std::to_string(stats.shed)});
  table.add_row({"workers", std::to_string(stats.threads)});
  table.add_row({"frames served", std::to_string(stats.frames)});
  table.add_row({"warmup frames", std::to_string(stats.warmup.count)});
  table.add_row({"wall time [s]", math::format_double(stats.wall_seconds, 2)});
  table.add_row({"frames/sec", math::format_double(stats.frames_per_second, 1)});
  table.add_row({"frame p50 [ms]", math::format_double(stats.frame.p50_ms, 2)});
  table.add_row({"frame p99 [ms]", math::format_double(stats.frame.p99_ms, 2)});
  table.add_row({"frame max [ms]", math::format_double(stats.frame.max_ms, 2)});
  table.add_row({"queue p99 [ms]", math::format_double(stats.queue.p99_ms, 2)});
  table.add_row({"deadline hits", std::to_string(stats.deadline_hits)});
  if (stats.tuning.has_value()) {
    const sim::ServeStats::Tuning& t = *stats.tuning;
    table.add_row({"tuned deadline min [ms]",
                   math::format_double(t.deadline_min_ms, 2)});
    table.add_row({"tuned deadline mean [ms]",
                   math::format_double(t.deadline_mean_ms, 2)});
    table.add_row({"tuned deadline max [ms]",
                   math::format_double(t.deadline_max_ms, 2)});
  }
  if (stats.batching.has_value()) {
    const sim::ServeStats::Batching& b = *stats.batching;
    table.add_row({"batch ticks", std::to_string(b.ticks)});
    table.add_row({"mean batch", math::format_double(b.mean_batch, 2)});
    table.add_row({"max batch", std::to_string(b.max_batch)});
    table.add_row({"gather [ms]", math::format_double(b.gather_seconds * 1e3, 1)});
    table.add_row({"forward [ms]", math::format_double(b.forward_seconds * 1e3, 1)});
    table.add_row({"scatter [ms]", math::format_double(b.scatter_seconds * 1e3, 1)});
  }
  table.add_row({"parked", std::to_string(r.aggregate.successes)});
  table.add_row({"collided", std::to_string(r.aggregate.collisions)});
  table.add_row({"timed out", std::to_string(r.aggregate.timeouts)});
  table.add_row({"over budget", std::to_string(r.aggregate.budget_exceeded)});
  table.print(std::cout);
}

void print_sweep(const std::vector<sim::ServeLoadLevel>& levels,
                 int knee_offered) {
  math::TextTable table({"offered", "admitted", "shed", "frames", "frames/sec",
                         "p50 [ms]", "p99 [ms]", "queue p99 [ms]",
                         "deadline hits", "knee"});
  for (const sim::ServeLoadLevel& level : levels)
    table.add_row({std::to_string(level.offered),
                   std::to_string(level.admitted), std::to_string(level.shed),
                   std::to_string(level.frames),
                   math::format_double(level.frames_per_second, 1),
                   math::format_double(level.frame_p50_ms, 2),
                   math::format_double(level.frame_p99_ms, 2),
                   math::format_double(level.queue_p99_ms, 2),
                   std::to_string(level.deadline_hits),
                   level.knee ? "<-- knee" : ""});
  table.print(std::cout);
  if (knee_offered > 0)
    std::printf("\nsaturation knee at offered load %d: adding sessions "
                "beyond it no longer buys throughput, only latency\n",
                knee_offered);
  else if (!levels.empty())
    std::printf("\nno saturation knee observed: throughput still scaled at "
                "offered load %d\n", levels.back().offered);
}

int run_serve(const ServeOptions& opts) {
  const core::ControllerSpec* spec =
      core::ControllerRegistry::instance().find(opts.frontend.method);
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "bench_serve: unknown method \"%s\" — run `bench_suite "
                 "--list-methods` for the registered keys\n",
                 opts.frontend.method.c_str());
    return 2;
  }

  // Policy (when needed) is acquired once and shared across all levels.
  std::unique_ptr<il::IlPolicy> policy;
  serve::FrontendConfig base = opts.frontend;
  if (spec->needs_policy) {
    policy = bench::shared_policy();
    base.policy = policy.get();
  }

  // Validate once with the first level plugged in — the remaining checks
  // (batching, knob ranges) do not depend on the session count.
  serve::FrontendConfig probe = base;
  probe.sessions = opts.session_levels.front();
  std::string error;
  if (!serve::Frontend::validate(probe, &error)) {
    std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
    return 2;
  }

  const bool sweep = opts.session_levels.size() > 1;
  std::vector<sim::ServeLoadLevel> levels;
  std::vector<sim::SuiteCellResult> cells;
  sim::ServeStats last_stats;
  int last_workers = 0;
  bool aborted = false;

  for (const int sessions : opts.session_levels) {
    serve::FrontendConfig level_config = base;
    level_config.sessions = sessions;
    if (sweep) level_config.label = "serve@" + std::to_string(sessions);

    std::fprintf(
        stderr, "[serve] %d session%s of %s%s%s\n", sessions,
        sessions == 1 ? "" : "s", spec->display_name.c_str(),
        level_config.tuner.enabled ? ", autotuned deadline" : "",
        level_config.batch_inference
            ? (std::string(", batched inference via ") +
               math::gemm_kernel_name() + " gemm")
                  .c_str()
            : "");

    serve::Frontend frontend(level_config, &bench::sigint_token());
    serve::FrontendResult result;
    try {
      result = frontend.run();
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bench_serve: %s\n", e.what());
      return 2;
    }

    if (result.aborted) {
      // Partial level: keep only the levels completed so far in the report.
      aborted = true;
      std::fprintf(stderr,
                   "[serve] aborted at offered load %d — report keeps the "
                   "%zu completed level%s\n",
                   sessions, levels.size(), levels.size() == 1 ? "" : "s");
      break;
    }

    levels.push_back(serve::to_load_level(result.stats));
    last_stats = result.stats;
    last_workers = result.workers;
    sim::SuiteCell cell;
    cell.difficulty = level_config.difficulty;
    cell.time_limit = level_config.time_limit;
    cell.label = level_config.label;
    cells.push_back({cell, result.aggregate});
    std::fprintf(stderr, "[serve]   %llu frames, %.1f frames/sec, p99 %.2f ms\n",
                 static_cast<unsigned long long>(result.stats.frames),
                 result.stats.frames_per_second, result.stats.frame.p99_ms);
  }

  int knee_offered = 0;
  if (sweep && levels.size() > 1) {
    const int knee = serve::find_knee(levels);
    if (knee >= 0) {
      levels[static_cast<std::size_t>(knee)].knee = true;
      knee_offered = levels[static_cast<std::size_t>(knee)].offered;
    }
  }

  // ---- human-readable summary ------------------------------------------
  std::printf("\nServing run — %s%s\n\n", spec->display_name.c_str(),
              aborted ? " — ABORTED, partial results" : "");
  if (sweep) {
    print_sweep(levels, knee_offered);
  } else if (!levels.empty()) {
    sim::ServeStats stats = last_stats;
    serve::FrontendResult printable;  // re-fold for the table helper
    printable.stats = stats;
    printable.aggregate = cells.back().aggregate;
    print_single_run(printable);
  }

  // ---- RunReport artifact ----------------------------------------------
  if (!opts.report_path.empty()) {
    sim::EvalConfig eval_config;  // provenance fingerprint only
    eval_config.episodes =
        levels.empty() ? opts.session_levels.front() : levels.back().offered;
    eval_config.base_seed = opts.frontend.base_seed;
    eval_config.sim.frame_deadline_ms = opts.frontend.frame_deadline_ms;

    sim::RunReport report;
    report.meta.suite = "serve";
    report.meta.git_describe = sim::build_git_describe();
    report.meta.threads = last_workers;
    report.meta.episodes_per_cell = eval_config.episodes;
    report.meta.base_seed = opts.frontend.base_seed;
    report.meta.config_fingerprint = sim::config_fingerprint(eval_config);
    report.meta.aborted = aborted;
    if (!levels.empty()) {
      sim::ServeStats stats = last_stats;
      if (sweep) {
        stats.levels = levels;
        stats.knee_offered = knee_offered;
      }
      report.serve = stats;
    }
    report.add_cells(cells);

    std::string save_error;
    if (!report.save(opts.report_path, &save_error)) {
      std::fprintf(stderr, "bench_serve: %s\n", save_error.c_str());
      return 3;
    }
    std::fprintf(stderr, "[serve] %sreport written to %s\n",
                 aborted ? "partial (aborted) " : "",
                 opts.report_path.c_str());
  }
  return aborted ? 130 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opts;
  bool method_given = false;
  bool sessions_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--sessions") {
      const char* v = next_value();
      if (v == nullptr || !parse_session_levels(v, &opts.session_levels))
        return usage(argv[0]);
      sessions_given = true;
    } else if (arg == "--method") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.frontend.method = v;
      method_given = true;
    } else if (arg == "--frame-deadline-ms") {
      const char* v = next_value();
      if (v == nullptr ||
          !bench::parse_double_arg(v, &opts.frontend.frame_deadline_ms) ||
          opts.frontend.frame_deadline_ms <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--capacity") {
      const char* v = next_value();
      if (v == nullptr ||
          !bench::parse_int_arg(v, &opts.frontend.admission.max_active) ||
          opts.frontend.admission.max_active < 0)
        return usage(argv[0]);
    } else if (arg == "--queue-limit") {
      const char* v = next_value();
      if (v == nullptr ||
          !bench::parse_int_arg(v, &opts.frontend.admission.queue_limit))
        return usage(argv[0]);
    } else if (arg == "--warmup-frames") {
      const char* v = next_value();
      if (v == nullptr ||
          !bench::parse_int_arg(v, &opts.frontend.warmup_frames) ||
          opts.frontend.warmup_frames < 0)
        return usage(argv[0]);
    } else if (arg == "--autotune-deadline") {
      opts.frontend.tuner.enabled = true;
    } else if (arg == "--deadline-min-ms") {
      const char* v = next_value();
      if (v == nullptr ||
          !bench::parse_double_arg(v, &opts.frontend.tuner.min_ms) ||
          opts.frontend.tuner.min_ms <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--deadline-max-ms") {
      const char* v = next_value();
      if (v == nullptr ||
          !bench::parse_double_arg(v, &opts.frontend.tuner.max_ms) ||
          opts.frontend.tuner.max_ms <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--deadline-headroom") {
      const char* v = next_value();
      if (v == nullptr ||
          !bench::parse_double_arg(v, &opts.frontend.tuner.headroom) ||
          opts.frontend.tuner.headroom <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--time-limit") {
      const char* v = next_value();
      if (v == nullptr ||
          !bench::parse_double_arg(v, &opts.frontend.time_limit) ||
          opts.frontend.time_limit <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--difficulty") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "easy") == 0)
        opts.frontend.difficulty = world::Difficulty::kEasy;
      else if (std::strcmp(v, "normal") == 0)
        opts.frontend.difficulty = world::Difficulty::kNormal;
      else if (std::strcmp(v, "hard") == 0)
        opts.frontend.difficulty = world::Difficulty::kHard;
      else return usage(argv[0]);
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (v == nullptr || !bench::parse_int_arg(v, &opts.frontend.threads) ||
          opts.frontend.threads < 0)
        return usage(argv[0]);
    } else if (arg == "--seed") {
      const char* v = next_value();
      char* end = nullptr;
      if (v == nullptr) return usage(argv[0]);
      opts.frontend.base_seed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') return usage(argv[0]);
    } else if (arg == "--report") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.report_path = v;
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--batch-inference") {
      opts.frontend.batch_inference = true;
    } else if (arg == "--max-batch") {
      const char* v = next_value();
      if (v == nullptr || !bench::parse_int_arg(v, &opts.frontend.max_batch) ||
          opts.frontend.max_batch < 1)
        return usage(argv[0]);
    } else {
      std::fprintf(stderr, "bench_serve: unknown argument \"%s\"\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }

  if (opts.quick) {
    // Smoke settings: tiny interleaved run that needs no trained policy and
    // finishes in seconds. Explicit flags given alongside --quick still win
    // for method/deadline/sessions, but the episode shape is pinned.
    if (!sessions_given) opts.session_levels = {4};
    opts.frontend.difficulty = world::Difficulty::kEasy;
    opts.frontend.time_limit = 6.0;
  }

  // Batching only applies to policy-backed methods; when the user asked for
  // it without picking one, serve the IL baseline instead of erroring on
  // the (policy-less) co default.
  if (opts.frontend.batch_inference && !method_given)
    opts.frontend.method = "il";

  bench::install_sigint_handler();
  return run_serve(opts);
}
