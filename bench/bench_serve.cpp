// Serving-scale driver for the stepwise Session API: opens N concurrent
// parking sessions and interleaves their control frames on ONE
// core::TaskPool — every step() is one served frame, timed individually.
// Reports throughput (frames/sec) and tail latency (p50/p99/max per-frame
// milliseconds) plus the episode outcome aggregate, all through a loadable
// sim::RunReport (meta.suite = "serve", report.serve = ServeStats).
//
// Sessions self-reschedule: a session's task steps one frame and, while the
// episode is live, resubmits itself to the pool queue, so frames of all
// sessions interleave FIFO instead of each session hogging a worker. This
// is the per-frame arbitration shape the paper's controller runs at, lifted
// to a multi-tenant serving loop.
//
// --batch-inference switches to the tick-synchronized loop instead: every
// live session stages its frame (sensing, in parallel), one
// il::BatchInferencer tick runs a single batched forward for all of them on
// shared weights, then the staged frames commit (in parallel). Outcomes are
// bit-identical to the unbatched loop — see sim::Session::stage — the trade
// is throughput for per-frame latency, since a frame now spans its whole
// tick. Batching counters land in ServeStats::batching.
//
// Ctrl-C is clean: SIGINT trips a shared core::CancelToken that every
// session polls, episodes end as budget_exceeded, and the partial report is
// written (meta.aborted) before exit 130.
//
// Usage:
//   bench_serve [options]
//     --sessions N           concurrent sessions (default 8)
//     --method KEY           controller registry key (default co)
//     --frame-deadline-ms X  per-frame controller budget (default: none)
//     --time-limit S         per-episode simulated time limit (default 60)
//     --difficulty LEVEL     easy|normal|hard (default normal)
//     --threads N            pool workers (0 = hardware, capped at 16)
//     --seed S               base seed; session i uses seed+i (default 1000)
//     --report PATH          write the RunReport JSON artifact
//     --quick                smoke mode: 4 easy sessions, 6 s episodes
//     --batch-inference      batch IL forwards across sessions per tick
//                            (methods with a policy only; default method
//                            becomes il when none is given)
//     --max-batch N          cap one batched forward (default 32)
//
// Exit codes: 0 ok, 2 usage error, 3 I/O error, 130 aborted by SIGINT.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "core/task_pool.hpp"
#include "il/batch_inferencer.hpp"
#include "mathkit/gemm.hpp"
#include "mathkit/stats.hpp"
#include "mathkit/table.hpp"
#include "sim/session.hpp"

namespace {

using namespace icoil;

struct ServeOptions {
  int sessions = 8;
  std::string method = "co";
  double frame_deadline_ms = 0.0;
  double time_limit = 60.0;
  world::Difficulty difficulty = world::Difficulty::kNormal;
  int threads = 0;
  std::uint64_t base_seed = 1000;
  std::string report_path;
  bool quick = false;
  bool batch_inference = false;
  int max_batch = 32;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--sessions N] [--method KEY] "
               "[--frame-deadline-ms X] [--time-limit S] "
               "[--difficulty easy|normal|hard] [--threads N] [--seed S] "
               "[--report PATH] [--quick] [--batch-inference] [--max-batch N]\n",
               argv0);
  return 2;
}

int run_serve(const ServeOptions& opts) {
  const auto& registry = core::ControllerRegistry::instance();
  const core::ControllerSpec* spec = registry.find(opts.method);
  if (spec == nullptr) {
    std::fprintf(stderr,
                 "bench_serve: unknown method \"%s\" — run `bench_suite "
                 "--list-methods` for the registered keys\n",
                 opts.method.c_str());
    return 2;
  }

  if (opts.batch_inference && !spec->needs_policy) {
    std::fprintf(stderr,
                 "bench_serve: --batch-inference requires a policy-backed "
                 "method (il or icoil), not \"%s\"\n",
                 opts.method.c_str());
    return 2;
  }

  // Policy (when needed) and every controller are built on the main thread
  // before serving starts; workers only ever call step().
  std::unique_ptr<il::IlPolicy> policy;
  core::ControllerBuildArgs args;
  if (spec->needs_policy) {
    policy = bench::shared_policy();
    args.policy = policy.get();
  }

  sim::SimConfig sim_config;
  sim_config.frame_deadline_ms = opts.frame_deadline_ms;

  // One scenario per session (distinct seeds -> distinct start poses).
  struct Served {
    std::unique_ptr<core::Controller> controller;
    std::unique_ptr<sim::Session> session;
    std::vector<double> latencies_ms;  // per-session: no cross-thread sharing
  };
  std::vector<Served> served(static_cast<std::size_t>(opts.sessions));
  for (int i = 0; i < opts.sessions; ++i) {
    const std::uint64_t seed =
        opts.base_seed + static_cast<std::uint64_t>(i);
    world::ScenarioOptions scenario_opts;
    scenario_opts.difficulty = opts.difficulty;
    scenario_opts.time_limit = opts.time_limit;
    const world::Scenario scenario = world::make_scenario(scenario_opts, seed);
    Served& s = served[static_cast<std::size_t>(i)];
    s.controller = registry.build(opts.method, args);
    s.session = std::make_unique<sim::Session>(scenario, *s.controller, seed,
                                               sim_config, &bench::sigint_token());
    s.latencies_ms.reserve(
        static_cast<std::size_t>(opts.time_limit / sim_config.dt) + 1);
  }

  const int workers = core::TaskPool::recommended_workers(
      opts.threads, opts.sessions, /*cap=*/16);
  core::TaskPool pool(workers);

  // Self-rescheduling frame tasks: one step per task, FIFO through the
  // shared queue, so no session monopolizes a worker.
  std::function<void(std::size_t)> pump = [&](std::size_t i) {
    pool.submit([&, i](const core::TaskPool::Context&) {
      Served& s = served[i];
      const std::size_t before = s.session->frame();
      const auto t0 = std::chrono::steady_clock::now();
      const sim::Session::Status status = s.session->step();
      // Only steps that ran a control frame count as served: the terminal
      // timeout/cancel finalize does no work and would deflate the latency
      // percentiles it is supposed to measure.
      if (s.session->frame() > before)
        s.latencies_ms.push_back(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
      if (status == sim::Session::Status::kRunning) pump(i);
    });
  };

  std::unique_ptr<il::BatchInferencer> service;
  if (opts.batch_inference) {
    service = std::make_unique<il::BatchInferencer>(
        *policy, static_cast<std::size_t>(opts.max_batch));
    for (const Served& s : served) {
      if (!s.session->supports_batching()) {
        std::fprintf(stderr,
                     "bench_serve: method \"%s\" does not implement "
                     "core::BatchClient\n",
                     opts.method.c_str());
        return 2;
      }
    }
  }

  std::fprintf(stderr,
               "[serve] %d session%s of %s on %d worker%s (deadline %s%s)\n",
               opts.sessions, opts.sessions == 1 ? "" : "s",
               spec->display_name.c_str(), workers, workers == 1 ? "" : "s",
               opts.frame_deadline_ms > 0.0
                   ? (std::to_string(opts.frame_deadline_ms) + " ms").c_str()
                   : "off",
               opts.batch_inference
                   ? (std::string(", batched inference via ") +
                      math::gemm_kernel_name() + " gemm")
                         .c_str()
                   : "");

  const auto wall0 = std::chrono::steady_clock::now();
  if (!opts.batch_inference) {
    for (std::size_t i = 0; i < served.size(); ++i) pump(i);
    pool.wait_idle();
  } else {
    // Tick-synchronized loop: stage all live sessions (parallel), run one
    // batched forward for the tick, commit the staged frames (parallel).
    // SIGINT needs no special casing — stage() finalizes cancelled episodes
    // exactly like step() would, and the loop drains.
    std::vector<char> staged(served.size(), 0);
    std::vector<std::chrono::steady_clock::time_point> stage_t0(served.size());
    bool any_live = true;
    while (any_live) {
      for (std::size_t i = 0; i < served.size(); ++i) {
        if (served[i].session->done()) continue;
        pool.submit([&, i](const core::TaskPool::Context&) {
          stage_t0[i] = std::chrono::steady_clock::now();
          staged[i] = served[i].session->stage(*service) ? 1 : 0;
        });
      }
      pool.wait_idle();

      service->run_tick();

      for (std::size_t i = 0; i < served.size(); ++i) {
        if (staged[i] == 0) continue;
        staged[i] = 0;
        pool.submit([&, i](const core::TaskPool::Context&) {
          served[i].session->commit(*service);
          // A batched frame's latency spans stage-start to commit-end: the
          // synchronization wall of its tick is part of what it costs.
          served[i].latencies_ms.push_back(
              std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - stage_t0[i])
                  .count());
        });
      }
      pool.wait_idle();

      any_live = false;
      for (const Served& s : served)
        if (!s.session->done()) any_live = true;
    }
  }
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
          .count();

  // ---- fold the per-session measurements -------------------------------
  std::vector<double> all_latencies;
  std::vector<sim::EpisodeResult> results;
  int deadline_hits = 0;
  for (const Served& s : served) {
    all_latencies.insert(all_latencies.end(), s.latencies_ms.begin(),
                         s.latencies_ms.end());
    results.push_back(s.session->result());
    deadline_hits += s.session->result().deadline_hits;
  }
  sim::ServeStats stats;
  stats.method = opts.method;
  stats.sessions = opts.sessions;
  stats.threads = workers;
  stats.frames = all_latencies.size();
  stats.wall_seconds = wall_seconds;
  stats.frames_per_second =
      wall_seconds > 0.0 ? static_cast<double>(stats.frames) / wall_seconds
                         : 0.0;
  stats.frame_p50_ms = math::percentile(all_latencies, 50.0);
  stats.frame_p99_ms = math::percentile(all_latencies, 99.0);
  stats.frame_max_ms = math::percentile(all_latencies, 100.0);
  stats.frame_deadline_ms = opts.frame_deadline_ms;
  stats.deadline_hits = deadline_hits;
  if (service) {
    const il::BatchStats& bs = service->stats();
    sim::ServeStats::Batching batching;
    batching.ticks = bs.ticks;
    batching.requests = bs.requests;
    batching.batches = bs.batches;
    batching.max_batch = bs.max_batch;
    batching.mean_batch = bs.mean_batch();
    batching.gather_seconds = bs.gather_seconds;
    batching.forward_seconds = bs.forward_seconds;
    batching.scatter_seconds = bs.scatter_seconds;
    stats.batching = batching;
  }

  const bool aborted = bench::sigint_token().cancelled();

  sim::EvalConfig eval_config;  // provenance fingerprint only
  eval_config.episodes = opts.sessions;
  eval_config.base_seed = opts.base_seed;
  eval_config.sim = sim_config;

  sim::RunReport report;
  report.meta.suite = "serve";
  report.meta.git_describe = sim::build_git_describe();
  report.meta.threads = workers;
  report.meta.episodes_per_cell = opts.sessions;
  report.meta.base_seed = opts.base_seed;
  report.meta.config_fingerprint = sim::config_fingerprint(eval_config);
  report.meta.aborted = aborted;
  report.serve = stats;

  sim::SuiteCell cell;
  cell.difficulty = opts.difficulty;
  cell.time_limit = opts.time_limit;
  cell.label = "serve";
  // The ONE fold: the report cell and the printed summary share it.
  const sim::Aggregate agg =
      sim::aggregate_episodes(results, spec->display_name, cell.label);
  report.add_cells({{cell, agg}});

  // ---- human-readable summary ------------------------------------------
  math::TextTable table({"metric", "value"});
  table.add_row({"sessions", std::to_string(opts.sessions)});
  table.add_row({"workers", std::to_string(workers)});
  table.add_row({"frames served", std::to_string(stats.frames)});
  table.add_row({"wall time [s]", math::format_double(wall_seconds, 2)});
  table.add_row({"frames/sec", math::format_double(stats.frames_per_second, 1)});
  table.add_row({"frame p50 [ms]", math::format_double(stats.frame_p50_ms, 2)});
  table.add_row({"frame p99 [ms]", math::format_double(stats.frame_p99_ms, 2)});
  table.add_row({"frame max [ms]", math::format_double(stats.frame_max_ms, 2)});
  table.add_row({"deadline hits", std::to_string(stats.deadline_hits)});
  if (stats.batching.has_value()) {
    const sim::ServeStats::Batching& b = *stats.batching;
    table.add_row({"batch ticks", std::to_string(b.ticks)});
    table.add_row({"mean batch", math::format_double(b.mean_batch, 2)});
    table.add_row({"max batch", std::to_string(b.max_batch)});
    table.add_row({"gather [ms]", math::format_double(b.gather_seconds * 1e3, 1)});
    table.add_row({"forward [ms]", math::format_double(b.forward_seconds * 1e3, 1)});
    table.add_row({"scatter [ms]", math::format_double(b.scatter_seconds * 1e3, 1)});
  }
  table.add_row({"parked", std::to_string(agg.successes)});
  table.add_row({"collided", std::to_string(agg.collisions)});
  table.add_row({"timed out", std::to_string(agg.timeouts)});
  table.add_row({"over budget", std::to_string(agg.budget_exceeded)});
  std::printf("\nServing run — %s, %d concurrent session%s%s\n\n",
              spec->display_name.c_str(), opts.sessions,
              opts.sessions == 1 ? "" : "s",
              aborted ? " — ABORTED, partial results" : "");
  table.print(std::cout);

  if (!opts.report_path.empty()) {
    std::string error;
    if (!report.save(opts.report_path, &error)) {
      std::fprintf(stderr, "bench_serve: %s\n", error.c_str());
      return 3;
    }
    std::fprintf(stderr, "[serve] %sreport written to %s\n",
                 aborted ? "partial (aborted) " : "",
                 opts.report_path.c_str());
  }
  return aborted ? 130 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  ServeOptions opts;
  bool method_given = false;
  bool sessions_given = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--sessions") {
      const char* v = next_value();
      if (v == nullptr || !bench::parse_int_arg(v, &opts.sessions) ||
          opts.sessions < 1)
        return usage(argv[0]);
      sessions_given = true;
    } else if (arg == "--method") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.method = v;
      method_given = true;
    } else if (arg == "--frame-deadline-ms") {
      const char* v = next_value();
      if (v == nullptr || !bench::parse_double_arg(v, &opts.frame_deadline_ms) ||
          opts.frame_deadline_ms <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--time-limit") {
      const char* v = next_value();
      if (v == nullptr || !bench::parse_double_arg(v, &opts.time_limit) ||
          opts.time_limit <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--difficulty") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      if (std::strcmp(v, "easy") == 0) opts.difficulty = world::Difficulty::kEasy;
      else if (std::strcmp(v, "normal") == 0)
        opts.difficulty = world::Difficulty::kNormal;
      else if (std::strcmp(v, "hard") == 0)
        opts.difficulty = world::Difficulty::kHard;
      else return usage(argv[0]);
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (v == nullptr || !bench::parse_int_arg(v, &opts.threads) ||
          opts.threads < 0)
        return usage(argv[0]);
    } else if (arg == "--seed") {
      const char* v = next_value();
      char* end = nullptr;
      if (v == nullptr) return usage(argv[0]);
      opts.base_seed = std::strtoull(v, &end, 10);
      if (end == v || *end != '\0') return usage(argv[0]);
    } else if (arg == "--report") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      opts.report_path = v;
    } else if (arg == "--quick") {
      opts.quick = true;
    } else if (arg == "--batch-inference") {
      opts.batch_inference = true;
    } else if (arg == "--max-batch") {
      const char* v = next_value();
      if (v == nullptr || !bench::parse_int_arg(v, &opts.max_batch) ||
          opts.max_batch < 1)
        return usage(argv[0]);
    } else {
      std::fprintf(stderr, "bench_serve: unknown argument \"%s\"\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }

  if (opts.quick) {
    // Smoke settings: tiny interleaved run that needs no trained policy and
    // finishes in seconds. Explicit flags given alongside --quick still win
    // for method/deadline/sessions, but the episode shape is pinned.
    if (!sessions_given) opts.sessions = 4;
    opts.difficulty = world::Difficulty::kEasy;
    opts.time_limit = 6.0;
  }

  // Batching only applies to policy-backed methods; when the user asked for
  // it without picking one, serve the IL baseline instead of erroring on
  // the (policy-less) co default.
  if (opts.batch_inference && !method_given) opts.method = "il";

  bench::install_sigint_handler();
  return run_serve(opts);
}
