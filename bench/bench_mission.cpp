// Mission benchmark: multi-leg parking missions (enter -> cruise -> park ->
// dwell -> unpark -> exit) with behavior-driven traffic, per
// mission::MissionRegistry template. Each (template, mission index) pair is
// one TaskPool task with its own Mission instance and fresh controller, so
// the fan-out is embarrassingly parallel; per-mission seeds are fixed up
// front, which makes the run bit-deterministic across thread counts.
//
// Gates:
//   1. Determinism: every mission is re-run on a single-thread pool and the
//      MissionResult fingerprints must match the wide pool's bit-for-bit.
//   2. --quick (CI smoke): contested_lot rows must average >= 3 legs per
//      mission and force >= 1 replan — the template's reason to exist.
//   3. --baseline PATH: sim::compare_to_baseline over the mission rows
//      (success-ratio drop and replans-per-mission drift tolerances).
//
// Results land in the `mission` block of a sim::RunReport (schema v2).
//
// Usage:
//   bench_mission [options]
//     --templates LIST   comma list of templates (default: all registered)
//     --missions N       missions per template (default 4)
//     --method NAME      controller registry key (default co)
//     --seed S           base seed; mission m uses seed S+m (default 9000)
//     --threads N        pool width for the wide pass (default recommended)
//     --report PATH      write the RunReport JSON artifact
//     --baseline PATH    compare against a committed baseline report
//     --success-tol X    allowed mission success-ratio drop (default 0.02)
//     --replan-tol X     allowed |replans/mission| drift (default 0.5)
//     --list-templates   print registered mission templates and exit
//     --quick            smoke mode: contested_lot only, 2 missions
//
// Exit codes: 0 ok, 1 gate failure (determinism, quick gate or baseline
// regression), 2 usage error, 3 I/O error.

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "core/task_pool.hpp"
#include "mathkit/fnv.hpp"
#include "mathkit/table.hpp"
#include "mission/mission.hpp"
#include "sim/report.hpp"

namespace {

using icoil::bench::parse_double_arg;
using icoil::bench::parse_int_arg;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--templates LIST] [--missions N] [--method NAME] "
               "[--seed S] [--threads N] [--report PATH] [--baseline PATH] "
               "[--success-tol X] [--replan-tol X] [--list-templates] "
               "[--quick]\n",
               argv0);
  return 2;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

/// Nearest-rank percentile of an unsorted sample (q in [0,1]); 0 when empty.
double percentile(std::vector<double> v, double q) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

/// Runs every (template, mission index) pair on a pool of `threads` workers.
/// Results are indexed template-major so the fold and the fingerprint digest
/// are independent of completion order.
std::vector<icoil::mission::MissionResult> run_missions(
    const std::vector<std::string>& templates, int missions,
    const std::string& method, std::uint64_t base_seed, int threads) {
  using namespace icoil;
  const auto total = templates.size() * static_cast<std::size_t>(missions);
  std::vector<mission::MissionResult> results(total);
  core::TaskPool pool(threads);
  for (std::size_t t = 0; t < templates.size(); ++t) {
    for (int m = 0; m < missions; ++m) {
      const std::size_t idx = t * static_cast<std::size_t>(missions) +
                              static_cast<std::size_t>(m);
      pool.submit([&, t, m, idx](const core::TaskPool::Context&) {
        const mission::MissionSpec& spec =
            mission::MissionRegistry::instance().at(templates[t]);
        // Fresh controller per mission: controllers are stateful and must
        // not be shared across concurrent missions.
        const std::unique_ptr<core::Controller> controller =
            core::ControllerRegistry::instance().build(method);
        mission::Mission mission(spec, base_seed + static_cast<std::uint64_t>(m));
        results[idx] = mission.run(*controller);
      });
    }
  }
  pool.wait_idle();
  return results;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icoil;

  std::string templates_csv;
  int missions = 4;
  std::string method = "co";
  std::uint64_t seed = 9000;
  int threads = 0;
  std::string report_path;
  std::string baseline_path;
  sim::BaselineTolerance tolerance;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--templates") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      templates_csv = v;
    } else if (arg == "--missions") {
      const char* v = next_value();
      if (v == nullptr || !parse_int_arg(v, &missions) || missions <= 0)
        return usage(argv[0]);
    } else if (arg == "--method") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      method = v;
    } else if (arg == "--seed") {
      const char* v = next_value();
      int s = 0;
      if (v == nullptr || !parse_int_arg(v, &s) || s < 0) return usage(argv[0]);
      seed = static_cast<std::uint64_t>(s);
    } else if (arg == "--threads") {
      const char* v = next_value();
      if (v == nullptr || !parse_int_arg(v, &threads) || threads < 0)
        return usage(argv[0]);
    } else if (arg == "--report") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      report_path = v;
    } else if (arg == "--baseline") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      baseline_path = v;
    } else if (arg == "--success-tol") {
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &tolerance.mission_success_drop) ||
          tolerance.mission_success_drop < 0.0)
        return usage(argv[0]);
    } else if (arg == "--replan-tol") {
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &tolerance.mission_replan_delta) ||
          tolerance.mission_replan_delta < 0.0)
        return usage(argv[0]);
    } else if (arg == "--list-templates") {
      for (const std::string& name : mission::MissionRegistry::instance().names()) {
        const mission::MissionSpec& spec =
            mission::MissionRegistry::instance().at(name);
        std::printf("%-16s %s\n", name.c_str(), spec.description.c_str());
      }
      return 0;
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "bench_mission: unknown argument \"%s\"\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }

  std::vector<std::string> templates = split_csv(templates_csv);
  if (templates.empty()) {
    templates = quick ? std::vector<std::string>{"contested_lot"}
                      : mission::MissionRegistry::instance().names();
  }
  if (quick) missions = std::min(missions, 2);
  for (const std::string& t : templates) {
    if (mission::MissionRegistry::instance().find(t) == nullptr) {
      std::fprintf(stderr, "bench_mission: unknown template \"%s\"\n",
                   t.c_str());
      return usage(argv[0]);
    }
  }
  const std::vector<std::string> known_methods =
      core::ControllerRegistry::instance().keys();
  if (std::find(known_methods.begin(), known_methods.end(), method) ==
      known_methods.end()) {
    std::fprintf(stderr, "bench_mission: unknown method \"%s\"\n",
                 method.c_str());
    return usage(argv[0]);
  }

  // The wide pass deliberately ignores hardware concurrency: the gate is
  // "16 workers and 1 worker agree bit-for-bit", and a 16-worker pool on a
  // small machine still interleaves tasks — which is exactly the scheduling
  // nondeterminism the gate must prove irrelevant.
  const int total_jobs = static_cast<int>(templates.size()) * missions;
  const int wide_threads =
      threads > 0 ? threads : std::max(2, std::min(16, total_jobs * 2));

  std::fprintf(stderr, "[mission] wide pass: %d missions on %d threads\n",
               total_jobs, wide_threads);
  const std::vector<mission::MissionResult> wide =
      run_missions(templates, missions, method, seed, wide_threads);

  // Determinism gate: the same fan-out on a single worker must produce
  // bit-identical MissionResult fingerprints (wall clock excluded by
  // construction).
  std::fprintf(stderr, "[mission] narrow pass: %d missions on 1 thread\n",
               total_jobs);
  const std::vector<mission::MissionResult> narrow =
      run_missions(templates, missions, method, seed, 1);
  bool deterministic = true;
  for (std::size_t i = 0; i < wide.size(); ++i) {
    if (wide[i].fingerprint() != narrow[i].fingerprint()) {
      deterministic = false;
      std::fprintf(stderr,
                   "[mission] DETERMINISM MISMATCH %s seed %llu: "
                   "%016llx (x%d threads) vs %016llx (x1)\n",
                   wide[i].mission.c_str(),
                   static_cast<unsigned long long>(wide[i].seed),
                   static_cast<unsigned long long>(wide[i].fingerprint()),
                   wide_threads,
                   static_cast<unsigned long long>(narrow[i].fingerprint()));
    }
  }

  // Fold template-major rows.
  sim::MissionStats stats;
  math::TextTable table({"template", "method", "missions", "success", "legs/m",
                         "replans/m", "collisions", "timeouts", "park p50 [s]",
                         "exit p50 [s]", "wall mean [s]"});
  bool quick_gate_ok = true;
  for (std::size_t t = 0; t < templates.size(); ++t) {
    sim::MissionTemplateRow row;
    row.mission = templates[t];
    row.method = method;
    row.missions = missions;
    row.spec_fingerprint =
        mission::MissionRegistry::instance().at(templates[t]).fingerprint();
    math::Fnv1a digest;
    std::vector<double> park_times, exit_times;
    double wall_total = 0.0;
    for (int m = 0; m < missions; ++m) {
      const mission::MissionResult& r =
          wide[t * static_cast<std::size_t>(missions) +
               static_cast<std::size_t>(m)];
      digest.add_int(static_cast<std::int64_t>(r.fingerprint()));
      row.succeeded += r.success ? 1 : 0;
      row.legs += static_cast<int>(r.legs.size());
      row.replans += r.replans;
      for (const mission::LegResult& leg : r.legs) {
        if (leg.status != mission::LegStatus::kFailed) continue;
        if (leg.outcome == sim::Outcome::kCollision) ++row.collisions;
        if (leg.outcome == sim::Outcome::kTimeout) ++row.timeouts;
      }
      if (r.success) {
        park_times.push_back(r.park_time);
        exit_times.push_back(r.exit_time);
      }
      wall_total += r.wall_seconds;
    }
    row.success_ratio =
        static_cast<double>(row.succeeded) / static_cast<double>(missions);
    row.legs_per_mission =
        static_cast<double>(row.legs) / static_cast<double>(missions);
    row.replans_per_mission =
        static_cast<double>(row.replans) / static_cast<double>(missions);
    row.park_time_p50 = percentile(park_times, 0.50);
    row.park_time_p95 = percentile(park_times, 0.95);
    row.exit_time_p50 = percentile(exit_times, 0.50);
    row.exit_time_p95 = percentile(exit_times, 0.95);
    row.wall_seconds_mean = wall_total / static_cast<double>(missions);
    row.result_fingerprint = digest.value();

    // Quick gate: the contested template must actually contest — multi-leg
    // missions with at least one forced replan.
    if (quick && row.mission == "contested_lot" &&
        (row.legs_per_mission < 3.0 || row.replans < 1)) {
      quick_gate_ok = false;
      std::fprintf(stderr,
                   "[mission] QUICK GATE FAIL %s: legs/mission %.1f "
                   "(need >= 3), replans %d (need >= 1)\n",
                   row.mission.c_str(), row.legs_per_mission, row.replans);
    }

    table.add_row({row.mission, row.method, std::to_string(row.missions),
                   math::format_double(row.success_ratio, 2),
                   math::format_double(row.legs_per_mission, 1),
                   math::format_double(row.replans_per_mission, 2),
                   std::to_string(row.collisions),
                   std::to_string(row.timeouts),
                   math::format_double(row.park_time_p50, 1),
                   math::format_double(row.exit_time_p50, 1),
                   math::format_double(row.wall_seconds_mean, 1)});
    stats.rows.push_back(std::move(row));
  }

  std::printf("\nMission benchmark — %d missions/template, method %s, base "
              "seed %llu, %d threads (determinism checked vs 1)\n\n",
              missions, method.c_str(),
              static_cast<unsigned long long>(seed), wide_threads);
  table.print(std::cout);

  sim::RunReport report;
  report.meta.suite = "mission";
  report.meta.git_describe = sim::build_git_describe();
  report.meta.threads = wide_threads;
  report.meta.episodes_per_cell = missions;
  report.meta.base_seed = seed;
  sim::EvalConfig eval_config;
  eval_config.episodes = missions;
  eval_config.base_seed = seed;
  report.meta.config_fingerprint = sim::config_fingerprint(eval_config);
  report.mission = stats;

  if (!report_path.empty()) {
    std::string error;
    if (!report.save(report_path, &error)) {
      std::fprintf(stderr, "bench_mission: %s\n", error.c_str());
      return 3;
    }
    std::fprintf(stderr, "[mission] report written to %s\n",
                 report_path.c_str());
  }

  bool baseline_ok = true;
  if (!baseline_path.empty()) {
    sim::RunReport baseline;
    std::string error;
    if (!sim::RunReport::load(baseline_path, &baseline, &error)) {
      std::fprintf(stderr, "bench_mission: cannot load baseline: %s\n",
                   error.c_str());
      return 3;
    }
    const sim::BaselineVerdict verdict =
        sim::compare_to_baseline(report, baseline, tolerance);
    std::printf("\n%s\n", verdict.summary().c_str());
    baseline_ok = verdict.ok;
  }

  if (!deterministic) {
    std::fprintf(stderr,
                 "bench_mission: FAIL — results differ across thread counts\n");
    return 1;
  }
  if (!quick_gate_ok || !baseline_ok) return 1;
  return 0;
}
