// Collision-backend ablation: grid (distance field) vs analytic (OBB
// narrow phase) static collision on crowded_lot at increasing obstacle
// density. Three measurements per density level:
//
//   1. Query rate: static_collision + static_clearance over random poses
//      through both backends (queries/sec, plus the grid backend's
//      conservative clearance error against the analytic ground truth).
//   2. Episode wall time: the CO controller runs the same seeds under each
//      backend; mean wall seconds per episode.
//   3. Verdict parity: episode outcomes must match seed-for-seed — the grid
//      backend's certainly-free fast path falls back to the analytic narrow
//      phase inside its conservative band, so verdicts are exact by
//      construction and any mismatch is a bug, not noise.
//
// A final parity gate repeats (3) on the canonical scenario (the CI smoke
// gate). Results land in the `collision` block of a sim::RunReport.
//
// Usage:
//   bench_collision [options]
//     --episodes N        episodes per backend per density (default 6)
//     --densities LIST    comma list of crowded_lot multipliers (default 1,4,10)
//     --queries N         random poses per query-rate measurement (default 20000)
//     --grid-resolution X grid cell size in metres (default 0.15)
//     --report PATH       write the RunReport JSON artifact
//     --quick             smoke mode: 2 episodes, 4000 queries
//
// Exit codes: 0 ok, 1 verdict mismatch between backends, 2 usage error,
// 3 I/O error.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "geom/angles.hpp"
#include "mathkit/rng.hpp"
#include "mathkit/table.hpp"
#include "sim/report.hpp"
#include "sim/session.hpp"
#include "sim/suite.hpp"
#include "vehicle/kinematics.hpp"
#include "world/world.hpp"

namespace {

using icoil::bench::parse_double_arg;
using icoil::bench::parse_int_arg;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--episodes N] [--densities LIST] [--queries N] "
               "[--grid-resolution X] [--report PATH] [--quick]\n",
               argv0);
  return 2;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Random vehicle footprints across the lot — the query workload. Poses are
/// deterministic per density so both backends (and reruns) see identical
/// work.
std::vector<icoil::geom::Obb> sample_footprints(
    const icoil::world::Scenario& scenario, int count, std::uint64_t seed) {
  const icoil::vehicle::BicycleModel model{icoil::vehicle::VehicleParams{}};
  const icoil::geom::Aabb& b = scenario.map.bounds;
  icoil::math::Rng rng(seed);
  std::vector<icoil::geom::Obb> fps;
  fps.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    icoil::vehicle::State s;
    s.pose.position = {rng.uniform(b.min.x, b.max.x),
                       rng.uniform(b.min.y, b.max.y)};
    s.pose.heading = rng.uniform(0.0, icoil::geom::kTwoPi);
    fps.push_back(model.footprint(s));
  }
  return fps;
}

struct QueryRates {
  double qps = 0.0;
  std::vector<double> clearances;  ///< per-footprint, cutoff-free
};

QueryRates measure_queries(const icoil::world::World& world,
                           const std::vector<icoil::geom::Obb>& footprints) {
  QueryRates out;
  out.clearances.reserve(footprints.size());
  // Warm pass fills caches so the timed pass measures steady state.
  volatile int sink = 0;
  for (const icoil::geom::Obb& fp : footprints)
    sink += world.static_collision(fp) ? 1 : 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (const icoil::geom::Obb& fp : footprints) {
    sink += world.static_collision(fp) ? 1 : 0;
    out.clearances.push_back(world.static_clearance(fp));
  }
  const double elapsed = seconds_since(t0);
  out.qps = elapsed > 0.0
                ? 2.0 * static_cast<double>(footprints.size()) / elapsed
                : 0.0;
  return out;
}

struct EpisodeSweep {
  double mean_seconds = 0.0;
  std::vector<std::string> outcomes;  ///< per seed, sim::to_string
};

EpisodeSweep run_episodes(const icoil::world::Scenario& scenario,
                          icoil::world::CollisionBackend backend,
                          double resolution, int episodes,
                          std::uint64_t base_seed) {
  using namespace icoil;
  EpisodeSweep sweep;
  sim::SimConfig sim_config;
  sim_config.collision_backend = backend;
  sim_config.grid_resolution = resolution;
  const auto& registry = core::ControllerRegistry::instance();
  double total = 0.0;
  for (int e = 0; e < episodes; ++e) {
    // Fresh controller per episode: controllers are stateful and the timing
    // should include reference planning, as a real run pays it.
    std::unique_ptr<core::Controller> controller = registry.build("co");
    const auto t0 = std::chrono::steady_clock::now();
    sim::Session session(scenario, *controller, base_seed + e, sim_config);
    while (session.step() == sim::Session::Status::kRunning) {
    }
    total += seconds_since(t0);
    sweep.outcomes.push_back(sim::to_string(session.result().outcome));
  }
  sweep.mean_seconds = episodes > 0 ? total / episodes : 0.0;
  return sweep;
}

std::vector<double> parse_densities(const std::string& csv) {
  std::vector<double> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) {
      double v = 0.0;
      if (!parse_double_arg(item.c_str(), &v) || v <= 0.0) return {};
      out.push_back(v);
    }
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace icoil;

  int episodes = 6;
  int queries = 20000;
  double resolution = world::DistanceField::kDefaultResolution;
  std::string densities_csv = "1,4,10";
  std::string report_path;
  bool quick = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--episodes") {
      const char* v = next_value();
      if (v == nullptr || !parse_int_arg(v, &episodes) || episodes <= 0)
        return usage(argv[0]);
    } else if (arg == "--queries") {
      const char* v = next_value();
      if (v == nullptr || !parse_int_arg(v, &queries) || queries <= 0)
        return usage(argv[0]);
    } else if (arg == "--grid-resolution") {
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &resolution) || resolution <= 0.0)
        return usage(argv[0]);
    } else if (arg == "--densities") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      densities_csv = v;
    } else if (arg == "--report") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      report_path = v;
    } else if (arg == "--quick") {
      quick = true;
    } else {
      std::fprintf(stderr, "bench_collision: unknown argument \"%s\"\n",
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (quick) {
    episodes = std::min(episodes, 2);
    queries = std::min(queries, 4000);
  }

  const std::vector<double> densities = parse_densities(densities_csv);
  if (densities.empty()) {
    std::fprintf(stderr, "bench_collision: bad --densities \"%s\"\n",
                 densities_csv.c_str());
    return usage(argv[0]);
  }

  constexpr std::uint64_t kScenarioSeed = 7;
  constexpr std::uint64_t kPoseSeed = 99;
  constexpr std::uint64_t kEpisodeSeed = 1000;

  sim::CollisionStats stats;
  stats.generator = "crowded_lot";
  stats.grid_resolution = resolution;

  bool all_verdicts_match = true;
  math::TextTable table({"density", "obstacles", "analytic q/s", "grid q/s",
                         "speedup", "co ep analytic [s]", "co ep grid [s]",
                         "clr err mean [m]", "clr err max [m]", "verdicts"});

  for (const double density : densities) {
    sim::SuiteCell cell;
    cell.generator = "crowded_lot";
    cell.difficulty = world::Difficulty::kNormal;
    cell.params.set("density", density);
    const world::Scenario scenario =
        world::make_scenario(cell.options(), kScenarioSeed);

    int statics = 0;
    for (const world::Obstacle& o : scenario.obstacles)
      if (!o.dynamic()) ++statics;

    const world::World analytic(scenario,
                                {world::CollisionBackend::kAnalytic, resolution});
    const world::World grid(scenario,
                            {world::CollisionBackend::kGrid, resolution});

    const auto footprints = sample_footprints(scenario, queries, kPoseSeed);
    const QueryRates a = measure_queries(analytic, footprints);
    const QueryRates g = measure_queries(grid, footprints);

    // Conservative clearance error: analytic minus grid, over footprints
    // both backends call free. Negative error would mean the grid bound is
    // NOT a lower bound — counted as a parity failure.
    double err_sum = 0.0, err_max = 0.0;
    int err_n = 0;
    bool bound_ok = true;
    for (std::size_t q = 0; q < footprints.size(); ++q) {
      const double av = a.clearances[q];
      const double gv = g.clearances[q];
      if (av <= 0.0 || gv <= 0.0) continue;        // in collision
      if (av >= geom::kMaxClearance) continue;     // no obstacle in range
      const double err = av - gv;
      if (err < -1e-9) bound_ok = false;
      err_sum += err;
      err_max = std::max(err_max, err);
      ++err_n;
    }

    const EpisodeSweep ea = run_episodes(
        scenario, world::CollisionBackend::kAnalytic, resolution, episodes,
        kEpisodeSeed);
    const EpisodeSweep eg = run_episodes(
        scenario, world::CollisionBackend::kGrid, resolution, episodes,
        kEpisodeSeed);

    sim::CollisionDensityRow row;
    row.density = density;
    row.obstacles = statics;
    row.analytic_qps = a.qps;
    row.grid_qps = g.qps;
    row.speedup = a.qps > 0.0 ? g.qps / a.qps : 0.0;
    row.analytic_episode_seconds = ea.mean_seconds;
    row.grid_episode_seconds = eg.mean_seconds;
    row.clearance_err_mean = err_n > 0 ? err_sum / err_n : 0.0;
    row.clearance_err_max = err_max;
    row.episodes = episodes;
    row.verdicts_match = bound_ok && ea.outcomes == eg.outcomes;
    all_verdicts_match = all_verdicts_match && row.verdicts_match;
    stats.rows.push_back(row);

    table.add_row({math::format_double(density, 1), std::to_string(statics),
                   math::format_double(a.qps, 0),
                   math::format_double(g.qps, 0),
                   math::format_double(row.speedup, 2) + "x",
                   math::format_double(ea.mean_seconds, 3),
                   math::format_double(eg.mean_seconds, 3),
                   math::format_double(row.clearance_err_mean, 3),
                   math::format_double(row.clearance_err_max, 3),
                   row.verdicts_match ? "match" : "MISMATCH"});
    std::fprintf(stderr, "[collision] density %.1fx done (%d statics)\n",
                 density, statics);
  }

  // CI parity gate: the canonical scenario's episode verdicts must be
  // identical under both backends.
  {
    sim::SuiteCell cell;  // defaults: canonical / easy / random start
    const world::Scenario scenario =
        world::make_scenario(cell.options(), kScenarioSeed);
    const EpisodeSweep ea = run_episodes(
        scenario, world::CollisionBackend::kAnalytic, resolution, episodes,
        kEpisodeSeed);
    const EpisodeSweep eg = run_episodes(
        scenario, world::CollisionBackend::kGrid, resolution, episodes,
        kEpisodeSeed);
    const bool match = ea.outcomes == eg.outcomes;
    all_verdicts_match = all_verdicts_match && match;
    std::fprintf(stderr, "[collision] canonical parity: %s\n",
                 match ? "match" : "MISMATCH");
  }

  std::printf("\nCollision backend ablation — crowded_lot, grid resolution "
              "%.2f m, %d queries, %d episodes/backend\n\n",
              resolution, queries, episodes);
  table.print(std::cout);

  if (!report_path.empty()) {
    sim::RunReport report;
    report.meta.suite = "collision";
    report.meta.git_describe = sim::build_git_describe();
    report.meta.threads = 1;
    report.meta.episodes_per_cell = episodes;
    report.meta.base_seed = kEpisodeSeed;
    sim::EvalConfig eval_config;
    eval_config.episodes = episodes;
    eval_config.base_seed = kEpisodeSeed;
    eval_config.sim.grid_resolution = resolution;
    report.meta.config_fingerprint = sim::config_fingerprint(eval_config);
    report.collision = stats;
    std::string error;
    if (!report.save(report_path, &error)) {
      std::fprintf(stderr, "bench_collision: %s\n", error.c_str());
      return 3;
    }
    std::fprintf(stderr, "[collision] report written to %s\n",
                 report_path.c_str());
  }

  if (!all_verdicts_match) {
    std::fprintf(stderr,
                 "bench_collision: FAIL — grid and analytic backends "
                 "disagreed (outcomes or clearance bound)\n");
    return 1;
  }
  return 0;
}
