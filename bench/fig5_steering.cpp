// Fig. 5 of the paper: steering values of the trained IL policy vs the
// (human) expert over a parking episode. Our expert is the CO planner; the
// figure's qualitative claim is that IL tracks the expert but its curve is
// stepped because of action discretization.

#include <cmath>
#include <cstdio>
#include <iostream>
#include <set>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "mathkit/table.hpp"
#include "sim/simulator.hpp"

int main() {
  using namespace icoil;
  const auto policy = bench::shared_policy();

  world::ScenarioOptions options;
  options.difficulty = world::Difficulty::kEasy;
  const world::Scenario scenario = world::make_scenario(options, 911);

  sim::SimConfig sim_config;
  sim_config.record_trace = true;
  sim::Simulator simulator(sim_config);

  const auto& registry = core::ControllerRegistry::instance();
  const auto expert = registry.build("co");
  const sim::EpisodeResult expert_run = simulator.run(scenario, *expert, 911);

  const auto il = registry.build("il", {.policy = policy.get()});
  const sim::EpisodeResult il_run = simulator.run(scenario, *il, 911);

  std::printf("Fig. 5 — steering time series (same scenario, seed 911)\n");
  std::printf("expert (CO): %s in %.1f s; IL: %s in %.1f s\n\n",
              sim::to_string(expert_run.outcome), expert_run.park_time,
              sim::to_string(il_run.outcome), il_run.park_time);

  math::TextTable table({"stamp", "t [s]", "expert steer", "IL steer"});
  const std::size_t frames =
      std::min(expert_run.trace.size(), il_run.trace.size());
  for (std::size_t i = 0; i < frames; i += 10) {
    table.add_row({std::to_string(i), math::format_double(expert_run.trace[i].t, 1),
                   math::format_double(expert_run.trace[i].info.command.steer, 3),
                   math::format_double(il_run.trace[i].info.command.steer, 3)});
  }
  table.print(std::cout);
  table.save_csv("fig5_steering.csv");

  // Quantify the discretization claim: the IL curve takes few distinct
  // values while the expert's continuous steer takes many.
  std::set<long> il_levels, expert_levels;
  for (std::size_t i = 0; i < frames; ++i) {
    il_levels.insert(std::lround(il_run.trace[i].info.command.steer * 1000));
    expert_levels.insert(
        std::lround(expert_run.trace[i].info.command.steer * 1000));
  }
  std::printf("\ndistinct steering values: expert %zu, IL %zu "
              "(IL is stepped: <= %d discretization levels)\n",
              expert_levels.size(), il_levels.size(),
              il::ActionDiscretizer::kSteerBins);
  return 0;
}
