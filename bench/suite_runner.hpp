#pragma once

// The one suite-runner behind `bench_suite` and the thin table2/fig8
// wrappers: builds the named suite, fans it out per method through
// sim::Evaluator, prints/saves the aggregate table, appends the BENCH_JSON
// lines, and optionally writes a sim::RunReport artifact and gates against
// a committed baseline report.

#include <cstdio>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/controller_registry.hpp"
#include "core/task_pool.hpp"
#include "mathkit/table.hpp"
#include "sim/evaluator.hpp"
#include "sim/report.hpp"
#include "world/generators/registry.hpp"

namespace icoil::bench {

/// Options shared by every bench_suite subcommand (defaults resolved per
/// subcommand inside run_suite_command).
struct RunSuiteOptions {
  int episodes = -1;           ///< -1 = subcommand default (env-overridable)
  std::string methods;         ///< csv of registry keys; "" = subcommand default
  std::string report_path;     ///< write a RunReport JSON here when set
  std::string baseline_path;   ///< compare against this RunReport when set
  std::string csv_path;        ///< "" = subcommand default (may be none)
  bool per_episode = false;    ///< include per-episode records in the report
  bool quick = false;          ///< smoke mode: 2 episodes, no training
  int threads = 0;             ///< EvalConfig::num_threads (0 = hardware)
  double wall_budget = 0.0;    ///< per-cell wall-clock budget [s]; <=0 = off
  double frame_deadline_ms = 0.0;  ///< per-frame controller budget; <=0 = off
  /// Static-collision backend name ("analytic" | "grid"); "" = analytic.
  std::string collision_backend;
  double grid_resolution = 0.0;    ///< grid cell size [m]; <=0 = default
  /// Hybrid-A* heuristic mode for CO-backed methods
  /// ("euclid-rs" | "lut" | "dijkstra" | "max"); "" = the planner default.
  std::string planner_heuristic;
  /// Pool-level abort token (typically tripped by a SIGINT handler): when it
  /// cancels mid-run, evaluation drains promptly and the partial report is
  /// still written, flagged meta.aborted.
  const core::CancelToken* abort = nullptr;
  sim::BaselineTolerance tolerance;
};

/// Prints the controller registry (key, label, description) — the
/// `bench_suite --list-methods` discovery listing.
inline void print_registered_methods(std::FILE* out) {
  const auto& registry = core::ControllerRegistry::instance();
  std::fprintf(out, "Registered controller methods (%zu):\n", registry.size());
  for (const std::string& key : registry.keys()) {
    const core::ControllerSpec& spec = *registry.find(key);
    std::fprintf(out, "  %-12s %-12s %s%s\n", key.c_str(),
                 ("[" + spec.display_name + "]").c_str(),
                 spec.description.c_str(),
                 spec.needs_policy ? " (needs trained policy)" : "");
  }
}

/// Prints the scenario generator registry (name, description) — the
/// `bench_suite --list-generators` discovery listing, the scenario-side
/// mirror of --list-methods.
inline void print_registered_generators(std::FILE* out) {
  const auto& registry = world::GeneratorRegistry::instance();
  std::fprintf(out, "Registered scenario generators (%zu):\n", registry.size());
  for (const std::string& name : registry.names()) {
    const world::ScenarioGenerator* gen = registry.find(name);
    std::fprintf(out, "  %-18s %s\n", name.c_str(),
                 gen != nullptr ? gen->description().c_str() : "");
  }
}

namespace detail {

inline sim::ScenarioSuite build_suite(const std::string& which) {
  sim::ScenarioSuite suite;
  suite.name = which;
  if (which == "table2") {
    for (auto level : {world::Difficulty::kEasy, world::Difficulty::kNormal,
                       world::Difficulty::kHard}) {
      sim::SuiteCell cell;
      cell.difficulty = level;
      cell.start_class = world::StartClass::kRandom;
      cell.label = world::to_string(level);
      suite.add(cell);
    }
  } else if (which == "fig8") {
    for (auto start : {world::StartClass::kClose, world::StartClass::kRemote,
                       world::StartClass::kRandom}) {
      for (int k = 1; k <= 5; ++k) {
        sim::SuiteCell cell;
        cell.difficulty = world::Difficulty::kNormal;
        cell.start_class = start;
        cell.num_obstacles_override = k;
        cell.label = world::to_string(start) + "/" + std::to_string(k);
        suite.add(cell);
      }
    }
  } else if (which == "zoo") {
    suite = sim::ScenarioSuite::cross(
        world::GeneratorRegistry::instance().names(),
        {world::Difficulty::kEasy, world::Difficulty::kNormal},
        {world::StartClass::kRandom});
    suite.name = which;
  }
  return suite;
}

inline int default_episodes(const std::string& which) {
  if (which == "table2") return 50;
  if (which == "fig8") return 15;
  return 4;  // zoo
}

inline std::string default_methods(const std::string& which, bool quick) {
  if (which == "zoo" || quick) return "co";  // no trained policy needed
  if (which == "fig8") return "icoil";
  return "icoil,il,co";  // table2
}

inline std::string default_csv(const std::string& which) {
  if (which == "table2") return "table2_success.csv";
  if (which == "fig8") return "fig8_sensitivity.csv";
  return "";
}

/// The historical BENCH_JSON bench identifiers, kept stable so the perf
/// trajectory spans the pre-bench_suite runs.
inline std::string bench_json_name(const std::string& which) {
  if (which == "table2") return "table2_success";
  if (which == "fig8") return "fig8_sensitivity";
  return which;
}

/// The paper context each suite reproduces (printed above the table).
inline std::string suite_title(const std::string& which) {
  if (which == "table2")
    return "Table II — parking time and success ratio per task level";
  if (which == "fig8")
    return "Fig. 8 — iCOIL parking time vs starting point and obstacle count";
  return "Scenario zoo — every registered generator family";
}

inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    const std::string item = csv.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (!item.empty()) out.push_back(item);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return out;
}

}  // namespace detail

/// Runs one suite subcommand end to end; returns the process exit code
/// (0 ok, 1 baseline regression, 2 usage error, 3 I/O error).
inline int run_suite_command(const std::string& which, RunSuiteOptions opts) {
  if (which != "table2" && which != "fig8" && which != "zoo") {
    std::fprintf(stderr,
                 "bench_suite: unknown suite \"%s\" (expected table2|fig8|zoo)\n",
                 which.c_str());
    return 2;
  }

  if (opts.episodes <= 0)
    opts.episodes =
        opts.quick ? 2 : episodes_override(detail::default_episodes(which));
  if (opts.methods.empty())
    opts.methods = detail::default_methods(which, opts.quick);
  if (opts.csv_path.empty() && !opts.quick)
    opts.csv_path = detail::default_csv(which);

  sim::ScenarioSuite suite = detail::build_suite(which);
  if (opts.wall_budget > 0.0)
    for (sim::SuiteCell& cell : suite.cells) cell.wall_budget = opts.wall_budget;

  // Resolve methods up front through the controller registry; the trained
  // policy loads (or trains) once and only when a policy-backed method asks
  // for it. It must be constructed HERE, on the main thread, before
  // evaluation starts: the evaluator invokes the controller factories
  // concurrently from its pool workers, so a lazy first-use construction
  // inside a factory would race.
  struct Method {
    std::string name;
    core::ControllerFactory factory;
  };
  // Planner-heuristic override: threaded to every CO-backed method as a
  // BASE config override (variant specs like co-fast still apply their own
  // tweaks on top), and recorded in SimConfig for the fingerprint.
  co::HeuristicMode heuristic = co::HeuristicMode::kMax;
  if (!opts.planner_heuristic.empty() &&
      !co::parse_heuristic_mode(opts.planner_heuristic, &heuristic)) {
    std::fprintf(stderr,
                 "bench_suite: unknown planner heuristic \"%s\" "
                 "(expected euclid-rs|lut|dijkstra|max)\n",
                 opts.planner_heuristic.c_str());
    return 2;
  }
  co::CoPlannerConfig co_override;
  core::IcoilConfig icoil_override;
  co_override.astar.heuristic = heuristic;
  icoil_override.co.astar.heuristic = heuristic;

  const auto& registry = core::ControllerRegistry::instance();
  std::unique_ptr<il::IlPolicy> policy;
  std::vector<Method> methods;
  for (const std::string& m : detail::split_csv(opts.methods)) {
    const core::ControllerSpec* spec = registry.find(m);
    if (spec == nullptr) {
      std::fprintf(stderr,
                   "bench_suite: unknown method \"%s\" — run --list-methods "
                   "for the registered keys\n",
                   m.c_str());
      return 2;
    }
    core::ControllerBuildArgs args;
    if (!opts.planner_heuristic.empty()) {
      args.co = &co_override;
      args.icoil = &icoil_override;
    }
    if (spec->needs_policy) {
      if (!policy) policy = shared_policy();
      args.policy = policy.get();
    }
    methods.push_back({spec->display_name, registry.factory(m, args)});
  }

  sim::EvalConfig eval_config;
  eval_config.episodes = opts.episodes;
  eval_config.num_threads = opts.threads;
  eval_config.abort = opts.abort;
  if (opts.frame_deadline_ms > 0.0)
    eval_config.sim.frame_deadline_ms = opts.frame_deadline_ms;
  if (!opts.collision_backend.empty() &&
      !world::parse_collision_backend(opts.collision_backend,
                                      &eval_config.sim.collision_backend)) {
    std::fprintf(stderr,
                 "bench_suite: unknown collision backend \"%s\" "
                 "(expected analytic|grid)\n",
                 opts.collision_backend.c_str());
    return 2;
  }
  if (opts.grid_resolution > 0.0)
    eval_config.sim.grid_resolution = opts.grid_resolution;
  eval_config.sim.planner_heuristic = heuristic;
  sim::Evaluator evaluator(eval_config);

  sim::RunReport report;
  report.meta.suite = which;
  report.meta.git_describe = sim::build_git_describe();
  report.meta.threads = evaluator.resolved_workers(
      opts.episodes * static_cast<int>(suite.cells.size()));
  report.meta.episodes_per_cell = opts.episodes;
  report.meta.base_seed = eval_config.base_seed;
  report.meta.config_fingerprint = sim::config_fingerprint(eval_config);

  const auto aborted = [&] {
    return opts.abort != nullptr && opts.abort->cancelled();
  };

  math::TextTable table({"cell", "method", "avg [s]", "std [s]", "max [s]",
                         "min [s]", "success", "over budget", "episodes"});
  for (const Method& method : methods) {
    if (aborted()) break;  // drain: later methods never even start
    const auto detailed = evaluator.evaluate_suite_detailed(
        method.factory, suite,
        [&](const sim::SuiteCell& cell, int completed, int total) {
          std::fprintf(stderr, "[%s] %s / %s done (%d/%d)\n", which.c_str(),
                       cell.display_label().c_str(), method.name.c_str(),
                       completed, total);
        });

    const std::vector<sim::SuiteCellResult> results =
        sim::aggregate_suite(detailed, method.name);
    append_bench_json(detail::bench_json_name(which), results);
    if (opts.per_episode)
      report.add_cells_detailed(results, detailed);
    else
      report.add_cells(results);

    for (const sim::SuiteCellResult& r : results) {
      const sim::Aggregate& agg = r.aggregate;
      table.add_row({r.cell.display_label(), method.name,
                     math::format_double(agg.park_time.mean(), 2),
                     math::format_double(agg.park_time.stddev(), 2),
                     math::format_double(agg.park_time.max(), 2),
                     math::format_double(agg.park_time.min(), 2),
                     math::format_double(100.0 * agg.success_ratio(), 0) + "%",
                     std::to_string(agg.budget_exceeded),
                     std::to_string(agg.episodes)});
    }
  }

  report.meta.aborted = aborted();

  std::printf("\n%s (%d episodes/cell, %d worker thread%s)%s\n\n",
              detail::suite_title(which).c_str(), opts.episodes,
              report.meta.threads, report.meta.threads == 1 ? "" : "s",
              report.meta.aborted ? " — ABORTED, partial results" : "");
  table.print(std::cout);
  if (!opts.csv_path.empty()) table.save_csv(opts.csv_path);

  if (!opts.report_path.empty()) {
    std::string error;
    if (!report.save(opts.report_path, &error)) {
      std::fprintf(stderr, "bench_suite: %s\n", error.c_str());
      return 3;
    }
    std::fprintf(stderr, "[%s] %sreport written to %s\n", which.c_str(),
                 report.meta.aborted ? "partial (aborted) " : "",
                 opts.report_path.c_str());
  }

  if (report.meta.aborted) {
    // 128 + SIGINT, the conventional "died on ctrl-C" exit — but only after
    // the partial report hit disk. Baseline gating a partial run would only
    // produce spurious regressions, so it is skipped.
    std::fprintf(stderr, "[%s] aborted by cancellation token\n", which.c_str());
    return 130;
  }

  if (!opts.baseline_path.empty()) {
    sim::RunReport baseline;
    std::string error;
    if (!sim::RunReport::load(opts.baseline_path, &baseline, &error)) {
      std::fprintf(stderr, "bench_suite: cannot load baseline: %s\n",
                   error.c_str());
      return 3;
    }
    const sim::BaselineVerdict verdict =
        sim::compare_to_baseline(report, baseline, opts.tolerance);
    std::printf("\n%s\n", verdict.summary().c_str());
    if (!verdict.ok) return 1;
  }
  return 0;
}

}  // namespace icoil::bench
