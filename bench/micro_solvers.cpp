// Micro-benchmarks of the substrates: the ADMM QP solver, LDLT, Reeds-Shepp
// word search, hybrid A*, the BEV rasterizer and the conv forward pass.
// These quantify where a CO frame's milliseconds go.

#include <benchmark/benchmark.h>

#include "co/heuristic.hpp"
#include "co/hybrid_astar.hpp"
#include "co/reeds_shepp.hpp"
#include "sim/suite.hpp"
#include "il/batch_inferencer.hpp"
#include "il/observation.hpp"
#include "il/policy.hpp"
#include "mathkit/gemm.hpp"
#include "mathkit/ldlt.hpp"
#include "mathkit/qp.hpp"
#include "mathkit/rng.hpp"
#include "nn/layers.hpp"
#include "sensing/bev.hpp"
#include "world/scenario.hpp"
#include "world/world.hpp"

namespace {

using namespace icoil;

math::Matrix random_spd(std::size_t n, std::uint64_t seed) {
  math::Rng rng(seed);
  math::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal() * 0.3;
  math::Matrix m = a.transpose() * a;
  for (std::size_t i = 0; i < n; ++i) m(i, i) += 1.0;
  return m;
}

void BM_LdltFactorSolve(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  const math::Matrix m = random_spd(n, 3);
  std::vector<double> b(n, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math::solve_spd(m, b));
  }
}
BENCHMARK(BM_LdltFactorSolve)->Arg(30)->Arg(90)->Arg(180)->Unit(benchmark::kMicrosecond);

void BM_QpBoxConstrained(benchmark::State& state) {
  const std::size_t n = static_cast<std::size_t>(state.range(0));
  math::QpProblem p;
  p.p = random_spd(n, 5);
  p.q.assign(n, -1.0);
  p.a = math::Matrix::identity(n);
  p.l.assign(n, -1.0);
  p.u.assign(n, 1.0);
  const math::QpSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(p));
  }
}
BENCHMARK(BM_QpBoxConstrained)->Arg(30)->Arg(90)->Unit(benchmark::kMicrosecond);

void BM_ReedsSheppShortest(benchmark::State& state) {
  const co::ReedsShepp rs(3.5);
  math::Rng rng(7);
  for (auto _ : state) {
    const geom::Pose2 to{rng.uniform(-10, 10), rng.uniform(-10, 10),
                         rng.uniform(-3, 3)};
    benchmark::DoNotOptimize(rs.shortest_path({0, 0, 0}, to));
  }
}
BENCHMARK(BM_ReedsSheppShortest)->Unit(benchmark::kMicrosecond);

void BM_HybridAStarPlan(benchmark::State& state) {
  world::ScenarioOptions options;
  options.difficulty = world::Difficulty::kEasy;
  const world::Scenario sc = world::make_scenario(options, 500);
  std::vector<geom::Obb> obstacles;
  for (const auto& o : sc.obstacles)
    if (!o.dynamic()) obstacles.push_back(o.shape);
  const co::HybridAStar astar(co::HybridAStarConfig{}, vehicle::VehicleParams{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(astar.plan(sc.start_pose, sc.map.goal_pose,
                                        obstacles, sc.map.bounds));
  }
}
BENCHMARK(BM_HybridAStarPlan)->Unit(benchmark::kMillisecond);

// --- Planner heuristic substrates ---------------------------------------
// BM_RsLutValue vs BM_ReedsSheppShortest is the core trade of the cached
// heuristic: a table read (tens of ns) replacing a full RS word search
// (µs) per evaluation. BM_DijkstraCostMapBuild is the per-plan cost the
// obstacle-aware term adds before the first expansion.

void BM_RsLutValue(benchmark::State& state) {
  const auto lut = co::RsHeuristicLut::shared({});  // one-time build, cached
  math::Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut->value_rel(
        rng.uniform(-20, 20), rng.uniform(-20, 20), rng.uniform(-3.1, 3.1)));
  }
}
BENCHMARK(BM_RsLutValue)->Unit(benchmark::kNanosecond);

void BM_DijkstraCostMapBuild(benchmark::State& state) {
  sim::SuiteCell cell;
  cell.generator = "crowded_lot";
  cell.difficulty = world::Difficulty::kNormal;
  cell.params.set("density", static_cast<double>(state.range(0)));
  const world::Scenario sc = world::make_scenario(cell.options(), 300);
  std::vector<geom::Obb> obstacles;
  for (const auto& o : sc.obstacles)
    if (!o.dynamic()) obstacles.push_back(o.shape);
  const co::HybridAStarConfig config;
  const world::DistanceField field(sc.map.bounds, obstacles,
                                   config.costmap_resolution);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        co::DijkstraCostMap(field, sc.map.goal_pose.position, 1.0));
  }
}
BENCHMARK(BM_DijkstraCostMapBuild)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

// The full search under each heuristic mode (0 = euclid-rs, 1 = lut,
// 2 = dijkstra, 3 = max) on the dense crowded_lot cell — the ablation the
// planner bench runs, reduced to one trackable number per mode.
void BM_HybridAStarHeuristic(benchmark::State& state) {
  sim::SuiteCell cell;
  cell.generator = "crowded_lot";
  cell.difficulty = world::Difficulty::kNormal;
  cell.params.set("density", 4.0);
  const world::Scenario sc = world::make_scenario(cell.options(), 300);
  std::vector<geom::Obb> obstacles;
  for (const auto& o : sc.obstacles)
    if (!o.dynamic()) obstacles.push_back(o.shape);
  co::HybridAStarConfig config;
  config.heuristic = static_cast<co::HeuristicMode>(state.range(0));
  state.SetLabel(co::to_string(config.heuristic));
  const world::DistanceField field(sc.map.bounds, obstacles);
  const co::HybridAStar astar(config, vehicle::VehicleParams{});
  // Pay the one-time shared-LUT build outside the timed loop.
  (void)astar.plan(sc.start_pose, sc.map.goal_pose, obstacles, sc.map.bounds,
                   nullptr, &field);
  for (auto _ : state) {
    benchmark::DoNotOptimize(astar.plan(sc.start_pose, sc.map.goal_pose,
                                        obstacles, sc.map.bounds, nullptr,
                                        &field));
  }
}
BENCHMARK(BM_HybridAStarHeuristic)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Arg(3)
    ->Unit(benchmark::kMillisecond);

// Static clearance through both collision backends at growing obstacle
// count: the analytic OBB narrow phase scans every box, the grid backend
// answers from the distance field in O(1) outside its conservative band.
void BM_Clearance(benchmark::State& state) {
  const double density = static_cast<double>(state.range(0));
  const bool use_grid = state.range(1) != 0;
  world::ScenarioOptions options;
  options.generator = "crowded_lot";
  options.difficulty = world::Difficulty::kNormal;
  options.params.set("density", density);
  const world::Scenario sc = world::make_scenario(options, 7);
  const world::World world{
      sc, {use_grid ? world::CollisionBackend::kGrid
                    : world::CollisionBackend::kAnalytic,
           world::DistanceField::kDefaultResolution}};
  const vehicle::BicycleModel model{vehicle::VehicleParams{}};
  math::Rng rng(99);
  std::vector<geom::Obb> fps;
  for (int i = 0; i < 512; ++i) {
    const geom::Aabb& b = sc.map.bounds;
    fps.push_back(model.footprint(geom::Pose2{
        rng.uniform(b.min.x, b.max.x), rng.uniform(b.min.y, b.max.y),
        rng.uniform(0.0, geom::kTwoPi)}));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(world.static_clearance(fps[i]));
    i = (i + 1) % fps.size();
  }
}
BENCHMARK(BM_Clearance)
    ->ArgsProduct({{1, 4, 10}, {0, 1}})  // {density, grid?}
    ->Unit(benchmark::kNanosecond);

void BM_BevRasterize(benchmark::State& state) {
  world::ScenarioOptions options;
  options.difficulty = world::Difficulty::kNormal;
  const world::World world{world::make_scenario(options, 5)};
  const sense::BevRasterizer raster(
      {static_cast<int>(state.range(0)), 19.2});
  for (auto _ : state) {
    benchmark::DoNotOptimize(raster.render(world, {25.0, 8.0, 0.4}));
  }
}
BENCHMARK(BM_BevRasterize)->Arg(32)->Arg(48)->Arg(64)->Unit(benchmark::kMicrosecond);

// Square double GEMM through the dispatched (blocked, possibly SIMD) kernel
// vs the reference triple loop — the speedup here is what Matrix::operator*
// and the batched conv/dense forwards inherit.
void BM_GemmBlocked(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  math::Rng rng(11);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> b(a.size()), c(a.size());
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  for (auto _ : state) {
    math::gemm_f64(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmBlocked)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_GemmNaive(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  math::Rng rng(11);
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  std::vector<double> b(a.size()), c(a.size());
  for (auto& v : a) v = rng.normal();
  for (auto& v : b) v = rng.normal();
  for (auto _ : state) {
    math::gemm_naive_f64(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmNaive)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_GemmBlockedF32(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  math::Rng rng(11);
  std::vector<float> a(static_cast<std::size_t>(n) * n);
  std::vector<float> b(a.size()), c(a.size());
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    math::gemm_f32(n, n, n, a.data(), n, b.data(), n, c.data(), n);
    benchmark::DoNotOptimize(c.data());
  }
  state.counters["GFLOPS"] = benchmark::Counter(
      2.0 * n * n * n, benchmark::Counter::kIsIterationInvariantRate,
      benchmark::Counter::kIs1000);
}
BENCHMARK(BM_GemmBlockedF32)->Arg(32)->Arg(128)->Arg(512)->Unit(benchmark::kMicrosecond);

void BM_ConvForward(benchmark::State& state) {
  nn::Conv2D conv(4, 8, 3, 1);
  math::Rng rng(1);
  conv.init(rng);
  nn::Tensor in({1, 4, 48, 48});
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<float>(rng.uniform());
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.forward(in, false));
  }
}
BENCHMARK(BM_ConvForward)->Unit(benchmark::kMicrosecond);

// The same conv through the allocation-free GEMM eval path.
void BM_ConvForwardEval(benchmark::State& state) {
  nn::Conv2D conv(4, 8, 3, 1);
  math::Rng rng(1);
  conv.init(rng);
  nn::Tensor in({1, 4, 48, 48});
  for (std::size_t i = 0; i < in.size(); ++i)
    in[i] = static_cast<float>(rng.uniform());
  nn::Tensor out;
  for (auto _ : state) {
    conv.forward_eval(in, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_ConvForwardEval)->Unit(benchmark::kMicrosecond);

// Whole-policy batched forward via the BatchInferencer service: submit
// `batch` copies of one observation, run one tick. Reported per-second rate
// is ticks, so per-observation cost is time / batch.
void BM_PolicyForward(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  il::IlPolicy policy{il::IlPolicyConfig(), 42u};
  world::ScenarioOptions opt;
  const world::World world{world::make_scenario(opt, 5)};
  const sense::BevRasterizer raster(policy.bev_spec());
  const sense::BevImage obs = il::make_observation(
      raster.render(world, world.scenario().start_pose), 0.3);
  il::BatchInferencer service(policy, 128);
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i) service.submit(obs);
    service.run_tick();
    benchmark::DoNotOptimize(&service.result(0));
  }
  state.counters["obs_per_s"] = benchmark::Counter(
      static_cast<double>(batch), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PolicyForward)->Arg(1)->Arg(8)->Arg(32)->Arg(128)->Unit(benchmark::kMicrosecond);

// Baseline the batched service competes against: N sequential single-
// observation infer() calls through the classic per-layer path.
void BM_PolicyInferSequential(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  il::IlPolicy policy{il::IlPolicyConfig(), 42u};
  world::ScenarioOptions opt;
  const world::World world{world::make_scenario(opt, 5)};
  const sense::BevRasterizer raster(policy.bev_spec());
  const sense::BevImage obs = il::make_observation(
      raster.render(world, world.scenario().start_pose), 0.3);
  for (auto _ : state) {
    for (int i = 0; i < batch; ++i)
      benchmark::DoNotOptimize(policy.infer(obs));
  }
  state.counters["obs_per_s"] = benchmark::Counter(
      static_cast<double>(batch), benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PolicyInferSequential)->Arg(1)->Arg(32)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
