// Fig. 8 of the paper: iCOIL parking time under close / remote / random
// starting points as the number of obstacles grows. The paper's shape:
// close starts are insensitive to obstacle count; remote and random starts
// get slower (and noisier) with more obstacles.
//
// The 15 (start class x obstacle count) cells form one ScenarioSuite
// evaluated in a single threaded fan-out through the suite API.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/icoil_controller.hpp"
#include "mathkit/table.hpp"
#include "sim/evaluator.hpp"

int main() {
  using namespace icoil;
  const auto policy = bench::shared_policy();

  sim::EvalConfig eval_config;
  eval_config.episodes = bench::episodes_override(15);
  sim::Evaluator evaluator(eval_config);

  sim::ScenarioSuite suite;
  suite.name = "fig8";
  for (auto start : {world::StartClass::kClose, world::StartClass::kRemote,
                     world::StartClass::kRandom}) {
    for (int k = 1; k <= 5; ++k) {
      sim::SuiteCell cell;
      cell.difficulty = world::Difficulty::kNormal;
      cell.start_class = start;
      cell.num_obstacles_override = k;
      cell.label = world::to_string(start) + "/" + std::to_string(k);
      suite.add(cell);
    }
  }

  const auto results = evaluator.evaluate_suite(
      [&] {
        return std::make_unique<core::IcoilController>(core::IcoilConfig{},
                                                       *policy);
      },
      suite, "iCOIL",
      [](const sim::SuiteCell& cell, int completed, int total) {
        std::fprintf(stderr, "[fig8] %s done (%d/%d)\n", cell.label.c_str(),
                     completed, total);
      });
  bench::append_bench_json("fig8_sensitivity", results);

  math::TextTable table({"start", "#obstacles", "time mean [s]",
                         "time std [s]", "success"});
  for (const sim::SuiteCellResult& r : results) {
    const sim::Aggregate& agg = r.aggregate;
    table.add_row({world::to_string(r.cell.start_class),
                   std::to_string(r.cell.num_obstacles_override),
                   math::format_double(agg.park_time.mean(), 2),
                   math::format_double(agg.park_time.stddev(), 2),
                   math::format_double(100.0 * agg.success_ratio(), 0) + "%"});
  }

  std::printf("\nFig. 8 — iCOIL parking time vs starting point and obstacle "
              "count (%d episodes/cell)\n\n",
              eval_config.episodes);
  table.print(std::cout);
  table.save_csv("fig8_sensitivity.csv");
  return 0;
}
