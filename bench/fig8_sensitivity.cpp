// Fig. 8 of the paper: iCOIL parking time under close / remote / random
// starting points as the number of obstacles grows. The paper's shape:
// close starts are insensitive to obstacle count; remote and random starts
// get slower (and noisier) with more obstacles.

#include <cstdio>
#include <iostream>

#include "bench_util.hpp"
#include "core/icoil_controller.hpp"
#include "mathkit/table.hpp"
#include "sim/evaluator.hpp"

int main() {
  using namespace icoil;
  const auto policy = bench::shared_policy();

  sim::EvalConfig eval_config;
  eval_config.episodes = bench::episodes_override(15);
  sim::Evaluator evaluator(eval_config);

  math::TextTable table({"start", "#obstacles", "time mean [s]",
                         "time std [s]", "success"});

  for (auto start : {world::StartClass::kClose, world::StartClass::kRemote,
                     world::StartClass::kRandom}) {
    for (int k = 1; k <= 5; ++k) {
      world::ScenarioOptions options;
      options.difficulty = world::Difficulty::kNormal;
      options.start_class = start;
      options.num_obstacles_override = k;
      const sim::Aggregate agg = evaluator.evaluate(
          [&] {
            return std::make_unique<core::IcoilController>(core::IcoilConfig{},
                                                           *policy);
          },
          options, "iCOIL");
      table.add_row({world::to_string(start), std::to_string(k),
                     math::format_double(agg.park_time.mean(), 2),
                     math::format_double(agg.park_time.stddev(), 2),
                     math::format_double(100.0 * agg.success_ratio(), 0) + "%"});
      std::fprintf(stderr, "[fig8] %s / %d obstacles done\n",
                   world::to_string(start).c_str(), k);
    }
  }

  std::printf("\nFig. 8 — iCOIL parking time vs starting point and obstacle "
              "count (%d episodes/cell)\n\n",
              eval_config.episodes);
  table.print(std::cout);
  table.save_csv("fig8_sensitivity.csv");
  return 0;
}
