// Fig. 8 of the paper: iCOIL parking time under close / remote / random
// starting points as the number of obstacles grows. The paper's shape:
// close starts are insensitive to obstacle count; remote and random starts
// get slower (and noisier) with more obstacles.
//
// Thin wrapper over the shared suite runner — run `bench_suite fig8` for
// the full option set (reports, baselines, budgets, method selection).

#include "suite_runner.hpp"

int main() {
  return icoil::bench::run_suite_command("fig8",
                                         icoil::bench::RunSuiteOptions{});
}
