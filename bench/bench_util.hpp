#pragma once

// Shared helpers for the figure/table harnesses: trained-policy acquisition,
// episode-count overrides so quick runs are possible via environment
// variables (ICOIL_EPISODES, ICOIL_EPOCHS, ICOIL_EXPERT_EPISODES), and the
// BENCH_JSON hook that appends per-cell aggregates as JSON lines for the
// perf-trajectory tooling.

#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "sim/evaluator.hpp"
#include "sim/policy_store.hpp"
#include "sim/report.hpp"

namespace icoil::bench {

inline int episodes_override(int fallback) {
  return sim::env_int_or("ICOIL_EPISODES", fallback);
}

/// The shared trained policy (cached on disk next to the working directory).
inline std::unique_ptr<il::IlPolicy> shared_policy() {
  return sim::get_or_train_policy(sim::default_policy_options());
}

/// Append one per-cell aggregate as a JSON line to the file named by the
/// BENCH_JSON environment variable; no-op when it is unset. Goes through the
/// RunReport JSON writer, so user-settable labels (SuiteCell::label) with
/// quotes or backslashes stay valid JSON.
inline void append_bench_json(const std::string& bench, const std::string& cell,
                              const sim::Aggregate& agg) {
  const char* path = std::getenv("BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << sim::aggregate_json_line(bench, cell, agg) << "\n";
}

/// JSON hook for a whole suite run.
inline void append_bench_json(const std::string& bench,
                              const std::vector<sim::SuiteCellResult>& results) {
  for (const sim::SuiteCellResult& r : results)
    append_bench_json(bench, r.cell.display_label(), r.aggregate);
}

}  // namespace icoil::bench
