#pragma once

// Shared helpers for the figure/table harnesses: trained-policy acquisition,
// episode-count overrides so quick runs are possible via environment
// variables (ICOIL_EPISODES, ICOIL_EPOCHS, ICOIL_EXPERT_EPISODES), strict
// CLI number parsing, the SIGINT abort token both drivers share, and the
// BENCH_JSON hook that appends per-cell aggregates as JSON lines for the
// perf-trajectory tooling.

#include <cmath>
#include <csignal>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>

#include "core/cancel_token.hpp"
#include "sim/evaluator.hpp"
#include "sim/policy_store.hpp"
#include "sim/report.hpp"

namespace icoil::bench {

inline int episodes_override(int fallback) {
  return sim::env_int_or("ICOIL_EPISODES", fallback);
}

/// Strict CLI int parse by the same convention as sim::env_int_or: trailing
/// junk is an error, not silently ignored (atoi would map "2x" to 2 and
/// "eight" to 0). Range checks stay at the call site.
inline bool parse_int_arg(const char* text, int* out) {
  char* end = nullptr;
  const long value = std::strtol(text, &end, 10);
  if (end == text || *end != '\0' || value < -1000000000L ||
      value > 1000000000L)
    return false;
  *out = static_cast<int>(value);
  return true;
}

/// Strict CLI double parse. strtod accepts "nan"/"inf"; a NaN tolerance
/// would make every baseline comparison silently pass, so only finite
/// values count as parsed. Range checks stay at the call site.
inline bool parse_double_arg(const char* text, double* out) {
  char* end = nullptr;
  *out = std::strtod(text, &end);
  return end != text && *end == '\0' && std::isfinite(*out);
}

/// The process-wide SIGINT abort token shared by the bench drivers. A
/// signal handler may only touch lock-free atomics; CancelToken::cancel is
/// one relaxed atomic store, so tripping it from the handler is
/// async-signal-safe. Everything else (draining workers, writing the
/// partial report) happens on the normal path once the fan-out observes it.
inline core::CancelToken& sigint_token() {
  static core::CancelToken token;
  return token;
}

/// Installs the SIGINT -> sigint_token() handler; call once from main.
inline void install_sigint_handler() {
  sigint_token();  // construct before the handler can fire
  std::signal(SIGINT, [](int) { sigint_token().cancel(); });
}

/// The shared trained policy (cached on disk next to the working directory).
inline std::unique_ptr<il::IlPolicy> shared_policy() {
  return sim::get_or_train_policy(sim::default_policy_options());
}

/// Append one per-cell aggregate as a JSON line to the file named by the
/// BENCH_JSON environment variable; no-op when it is unset. Goes through the
/// RunReport JSON writer, so user-settable labels (SuiteCell::label) with
/// quotes or backslashes stay valid JSON.
inline void append_bench_json(const std::string& bench, const std::string& cell,
                              const sim::Aggregate& agg) {
  const char* path = std::getenv("BENCH_JSON");
  if (path == nullptr || *path == '\0') return;
  std::ofstream out(path, std::ios::app);
  if (!out) return;
  out << sim::aggregate_json_line(bench, cell, agg) << "\n";
}

/// JSON hook for a whole suite run.
inline void append_bench_json(const std::string& bench,
                              const std::vector<sim::SuiteCellResult>& results) {
  for (const sim::SuiteCellResult& r : results)
    append_bench_json(bench, r.cell.display_label(), r.aggregate);
}

}  // namespace icoil::bench
