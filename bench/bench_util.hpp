#pragma once

// Shared helpers for the figure/table harnesses: trained-policy acquisition
// and episode-count overrides so quick runs are possible via environment
// variables (ICOIL_EPISODES, ICOIL_EPOCHS, ICOIL_EXPERT_EPISODES).

#include <cstdlib>
#include <memory>
#include <string>

#include "sim/policy_store.hpp"

namespace icoil::bench {

inline int episodes_override(int fallback) {
  if (const char* env = std::getenv("ICOIL_EPISODES"))
    return std::max(1, std::atoi(env));
  return fallback;
}

/// The shared trained policy (cached on disk next to the working directory).
inline std::unique_ptr<il::IlPolicy> shared_policy() {
  return sim::get_or_train_policy(sim::default_policy_options());
}

}  // namespace icoil::bench
